// The serve audit journal: record schema, size-based rotation, the
// slow-request span-dump threshold, and the journal a full run_serve
// session writes (one record per request, unique trace ids, parse
// failures included).
#include "api/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/response.h"
#include "api/serve.h"
#include "api/service.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/json.h"

namespace deeppool::api {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

std::vector<Json> read_records(const std::string& path) {
  std::ifstream in(path);
  std::vector<Json> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(Json::parse(line));
  }
  return records;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(Journal, RecordSchemaCarriesOutcomeAndCacheDeltas) {
  JournalRecord record;
  record.trace_id = 12;
  record.op = "schedule";
  record.ok = true;
  record.wall_ms = 3.5;
  record.plan_cache_hits = 6;
  record.plan_cache_misses = 2;
  record.calib_hits = 1;
  const Json j = to_json(record);
  EXPECT_EQ(j.at("trace_id").as_int(), 12);
  EXPECT_EQ(j.at("op").as_string(), "schedule");
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(j.at("wall_ms").as_number(), 3.5);
  EXPECT_EQ(j.at("plan_cache").at("hits").as_int(), 6);
  EXPECT_EQ(j.at("plan_cache").at("misses").as_int(), 2);
  EXPECT_EQ(j.at("calib").at("hits").as_int(), 1);
  EXPECT_EQ(j.at("calib").at("misses").as_int(), 0);
  // Success records carry no error and, un-slow, no spans.
  EXPECT_FALSE(j.contains("error"));
  EXPECT_FALSE(j.contains("spans"));

  JournalRecord failed;
  failed.trace_id = 13;
  failed.error = "unknown op \"frobnicate\"";
  const Json fj = to_json(failed);
  EXPECT_FALSE(fj.at("ok").as_bool());
  EXPECT_EQ(fj.at("op").as_string(), "");
  EXPECT_EQ(fj.at("error").as_string(), "unknown op \"frobnicate\"");
}

TEST(Journal, SpansRenderRelativeToTheRootAndDropOpenOnes) {
  std::vector<obs::SpanRecord> spans(3);
  spans[0] = obs::SpanRecord{0, -1, "schedule", 1.0, 0.5};
  spans[1] = obs::SpanRecord{1, 0, "plan_cache/resolve", 1.1, 0.2};
  spans[2] = obs::SpanRecord{2, 0, "still_open", 1.2, -1.0};
  const Json j = spans_to_json(spans);
  ASSERT_EQ(j.as_array().size(), 2u);  // the open span is dropped
  const Json& root = j.as_array()[0];
  EXPECT_EQ(root.at("name").as_string(), "schedule");
  EXPECT_EQ(root.at("parent").as_int(), -1);
  EXPECT_DOUBLE_EQ(root.at("start_ms").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(root.at("dur_ms").as_number(), 500.0);
  const Json& child = j.as_array()[1];
  EXPECT_EQ(child.at("parent").as_int(), 0);
  EXPECT_NEAR(child.at("start_ms").as_number(), 100.0, 1e-9);
}

TEST(Journal, RotatesAtTheSizeCapWithoutSplittingRecords) {
  const std::string path = temp_path("journal_rotate.ndjson");
  remove_journal(path);
  Json record;
  record["filler"] = Json(std::string(40, 'x'));
  const std::string line = record.dump() + "\n";
  // Cap fits exactly two records; the fifth append leaves one rotation
  // behind and an active file holding the overflow.
  JournalOptions options;
  options.path = path;
  options.max_bytes = static_cast<std::int64_t>(2 * line.size());
  Journal journal(options);
  for (int i = 0; i < 5; ++i) journal.append(record);
  EXPECT_EQ(journal.rotations(), 2);
  ASSERT_TRUE(file_exists(path + ".1"));
  const std::vector<Json> active = read_records(path);
  const std::vector<Json> rotated = read_records(path + ".1");
  EXPECT_EQ(active.size(), 1u);
  EXPECT_EQ(rotated.size(), 2u);
  // Every surviving line is whole, parseable JSON (read_records throws
  // otherwise) and at most the cap lives in the active file.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_LE(static_cast<std::int64_t>(in.tellg()), options.max_bytes);
  remove_journal(path);
}

TEST(Journal, OversizedSingleRecordStillLandsWhole) {
  const std::string path = temp_path("journal_oversize.ndjson");
  remove_journal(path);
  JournalOptions options;
  options.path = path;
  options.max_bytes = 8;
  Journal journal(options);
  Json record;
  record["big"] = Json(std::string(64, 'y'));
  journal.append(record);
  journal.append(record);
  const std::vector<Json> active = read_records(path);
  ASSERT_EQ(active.size(), 1u);  // second append rotated the first out
  EXPECT_EQ(active[0].at("big").as_string(), std::string(64, 'y'));
  EXPECT_EQ(read_records(path + ".1").size(), 1u);
  remove_journal(path);
}

TEST(Journal, RejectsANonPositiveCapAndAnUnwritablePath) {
  JournalOptions bad_cap;
  bad_cap.path = temp_path("journal_unused.ndjson");
  bad_cap.max_bytes = 0;
  EXPECT_THROW(Journal{bad_cap}, std::invalid_argument);
  JournalOptions bad_path;
  bad_path.path = temp_path("no_such_dir/journal.ndjson");
  EXPECT_THROW(Journal{bad_path}, std::runtime_error);
}

TEST(Journal, SlowThresholdGatesTheSpanDump) {
  const std::string path = temp_path("journal_slow.ndjson");
  remove_journal(path);
  JournalOptions options;
  options.path = path;
  EXPECT_FALSE(Journal(options).slow(1e9));  // default: never
  options.slow_ms = 5.0;
  const Journal journal(options);
  EXPECT_FALSE(journal.slow(4.9));
  EXPECT_TRUE(journal.slow(5.0));
  EXPECT_TRUE(journal.slow(50.0));
  remove_journal(path);
}

const char* kTinySchedule = R"({
  "kind": "schedule",
  "name": "journal_tiny",
  "workload": {
    "arrival": "fixed", "interval_s": 0.5, "num_jobs": 4, "seed": 3,
    "bg_fraction": 0.5, "min_iterations": 10, "max_iterations": 20,
    "fg_mix": [{"model": "vgg16", "weight": 1.0, "global_batch": 32,
                "amp_limit": 2.0}],
    "bg_mix": [{"model": "resnet50", "weight": 1.0, "global_batch": 16}]
  },
  "cluster": {"num_gpus": 4, "policy": "burst_lending",
              "util_timeline_bins": 8}
})";

std::string schedule_line() {
  Json j;
  j["op"] = Json("schedule");
  j["spec"] = Json::parse(kTinySchedule);
  return j.dump();
}

ServeOptions journal_options(const std::string& path, double slow_ms) {
  ServeOptions options;
  options.journal.path = path;
  options.journal.slow_ms = slow_ms;
  return options;
}

TEST(Journal, ServeSessionWritesOneRecordPerRequestWithUniqueIds) {
  const std::string path = temp_path("journal_session.ndjson");
  remove_journal(path);
  std::stringstream in;
  in << R"({"op": "models"})" << '\n'
     << schedule_line() << '\n'
     << schedule_line() << '\n'
     << "{not json" << '\n'
     << R"({"op": "frobnicate"})" << '\n'
     << "   " << '\n'  // blank: skipped, no record
     << R"({"op": "stats"})" << '\n';
  std::ostringstream out;
  Service service(ServiceOptions{1, nullptr});
  ASSERT_EQ(run_serve(in, out, service,
                      journal_options(path, /*slow_ms=*/-1.0)),
            0);
  const std::vector<Json> records = read_records(path);
  ASSERT_EQ(records.size(), 6u);  // one per non-blank line

  std::set<std::int64_t> ids;
  for (const Json& r : records) ids.insert(r.at("trace_id").as_int());
  EXPECT_EQ(ids.size(), records.size());  // unique, parse failures included

  EXPECT_EQ(records[0].at("op").as_string(), "models");
  EXPECT_TRUE(records[0].at("ok").as_bool());
  // The first schedule misses the cold plan cache; the second resolves
  // entirely from it — the per-request deltas show the warm-up.
  EXPECT_GT(records[1].at("plan_cache").at("misses").as_int(), 0);
  EXPECT_EQ(records[2].at("plan_cache").at("misses").as_int(), 0);
  EXPECT_GT(records[2].at("plan_cache").at("hits").as_int(), 0);
  // The unparseable line journals as a failure with no op.
  EXPECT_FALSE(records[3].at("ok").as_bool());
  EXPECT_EQ(records[3].at("op").as_string(), "");
  EXPECT_FALSE(records[3].at("error").as_string().empty());
  EXPECT_FALSE(records[4].at("ok").as_bool());
  EXPECT_GE(records[5].at("wall_ms").as_number(), 0.0);
  // No --slow-ms: no record dumps spans.
  for (const Json& r : records) EXPECT_FALSE(r.contains("spans"));
  remove_journal(path);
}

TEST(Journal, ShedRecordsCarryReasonAndRetryHint) {
  const std::string path = temp_path("journal_shed.ndjson");
  remove_journal(path);
  std::stringstream in;
  // One buffered burst: the eager drain sees the whole backlog, so lines
  // past the depth-1 queue shed at enqueue.
  for (int i = 0; i < 6; ++i) in << R"({"op": "models"})" << '\n';
  std::ostringstream out;
  Service service(ServiceOptions{1, nullptr});
  ServeOptions options = journal_options(path, /*slow_ms=*/-1.0);
  options.max_queue_depth = 1;
  ASSERT_EQ(run_serve(in, out, service, options), 0);

  const std::vector<Json> records = read_records(path);
  ASSERT_EQ(records.size(), 6u);
  int sheds = 0;
  for (const Json& r : records) {
    if (!r.contains("shed")) {
      // Non-shed records stay byte-identical: no shed keys at all.
      EXPECT_FALSE(r.contains("retry_after_ms"));
      continue;
    }
    ++sheds;
    EXPECT_EQ(r.at("shed").as_string(), "queue");
    EXPECT_GT(r.at("retry_after_ms").as_number(), 0.0);
    EXPECT_FALSE(r.at("ok").as_bool());
    EXPECT_NE(r.at("error").as_string().find("shed: queue full"),
              std::string::npos);
  }
  EXPECT_GE(sheds, 1);
  // The stdio transport never stamps connection ids.
  for (const Json& r : records) EXPECT_FALSE(r.contains("conn"));
  remove_journal(path);
}

TEST(Journal, SlowRequestsDumpTheirSpanTreeFastOnesDoNot) {
  const std::string path = temp_path("journal_slowdump.ndjson");
  remove_journal(path);
  std::stringstream in;
  in << schedule_line() << '\n';
  std::ostringstream out;
  Service service(ServiceOptions{1, nullptr});
  // Threshold 0: every handled request is "slow" and carries its tree.
  ASSERT_EQ(
      run_serve(in, out, service, journal_options(path, /*slow_ms=*/0.0)),
      0);
  std::vector<Json> records = read_records(path);
  ASSERT_EQ(records.size(), 1u);
  ASSERT_TRUE(records[0].contains("spans"));
  const Json::Array& spans = records[0].at("spans").as_array();
  ASSERT_FALSE(spans.empty());
  // The root span is the op itself; every other span parents into the
  // tree (parent ids all belong to the same request's records).
  EXPECT_EQ(spans[0].at("name").as_string(), "schedule");
  EXPECT_EQ(spans[0].at("parent").as_int(), -1);
  std::set<std::int64_t> span_ids;
  for (const Json& s : spans) span_ids.insert(s.at("id").as_int());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_TRUE(span_ids.count(spans[i].at("parent").as_int()));
  }

  // An unreachable threshold journals the same request without spans.
  remove_journal(path);
  std::stringstream in2;
  in2 << schedule_line() << '\n';
  std::ostringstream out2;
  ASSERT_EQ(run_serve(in2, out2, service,
                      journal_options(path, /*slow_ms=*/1e9)),
            0);
  records = read_records(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].contains("spans"));
  remove_journal(path);
}

TEST(Journal, WriteFailureDisablesJournalingButServingContinues) {
  // The audit journal is best-effort: when an append starts failing the
  // session drops the journal, counts what it lost, and keeps answering
  // every request in-band.
  const std::string path = temp_path("journal_failing.ndjson");
  remove_journal(path);
  const std::int64_t degraded_before =
      obs::registry().counter("degraded/journal").value();
  const std::int64_t lost_before =
      obs::registry().counter("degraded/journal_records_lost").value();

  std::stringstream in;
  in << R"({"op": "models"})" << '\n'
     << R"({"op": "models"})" << '\n'
     << R"({"op": "models"})" << '\n';
  std::ostringstream out;
  Service service(ServiceOptions{1, nullptr});
  util::failpoints::configure("journal/write=error(1)");
  const int exit_code =
      run_serve(in, out, service, journal_options(path, /*slow_ms=*/-1.0));
  // The first failed append tripped the breaker; later requests never
  // touched the dead journal, so the failpoint fired exactly once.
  EXPECT_EQ(util::failpoints::fired("journal/write"), 1);
  util::failpoints::clear();
  ASSERT_EQ(exit_code, 0);

  // Every request was still answered ok, in-band.
  std::vector<std::string> lines;
  {
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(response_from_json(Json::parse(line)).ok) << line;
  }

  EXPECT_EQ(obs::registry().counter("degraded/journal").value(),
            degraded_before + 1);
  EXPECT_EQ(obs::registry().counter("degraded/journal_records_lost").value(),
            lost_before + 1);
  EXPECT_TRUE(read_records(path).empty());
  remove_journal(path);
}

}  // namespace
}  // namespace deeppool::api
