#include "core/plan.h"

#include <gtest/gtest.h>

#include "core/profile.h"
#include "models/zoo.h"

namespace deeppool::core {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : model_(models::zoo::vgg16()),
        cost_(models::DeviceSpec::a100()),
        net_(net::NetworkSpec::nvswitch()),
        profiles_(model_, cost_, net_, ProfileOptions{8, 32, true}) {}

  models::ModelGraph model_;
  models::CostModel cost_;
  net::NetworkModel net_;
  ProfileSet profiles_;
};

TEST_F(PlanTest, DataParallelPlanCoversAllLayers) {
  const TrainingPlan plan = data_parallel_plan(profiles_, 8);
  EXPECT_EQ(plan.assignments.size(), model_.size());
  for (const LayerAssignment& a : plan.assignments) {
    EXPECT_EQ(a.gpus, 8);
    EXPECT_DOUBLE_EQ(a.comm_in_s, 0.0);
  }
  EXPECT_EQ(plan.peak_gpus(), 8);
  EXPECT_GT(plan.est_iteration_s, 0.0);
  EXPECT_GT(plan.single_gpu_iteration_s, plan.est_iteration_s);
}

TEST_F(PlanTest, DataParallelSpeedupSubLinear) {
  const TrainingPlan plan = data_parallel_plan(profiles_, 8);
  EXPECT_GT(plan.est_speedup(), 1.0);
  EXPECT_LT(plan.est_speedup(), 8.0);
}

TEST_F(PlanTest, AmplificationAboveOneWhenScaled) {
  const TrainingPlan plan = data_parallel_plan(profiles_, 8);
  EXPECT_GT(plan.amplification(), 1.0);
}

TEST_F(PlanTest, GpuSecIsWeightedSum) {
  TrainingPlan p;
  p.single_gpu_iteration_s = 1.0;
  LayerAssignment a;
  a.layer = 0;
  a.gpus = 4;
  a.comp_s = 0.1;
  a.sync_s = 0.05;
  a.comm_in_s = 0.01;
  p.assignments.push_back(a);
  EXPECT_DOUBLE_EQ(p.gpu_sec(), 0.16 * 4);
  EXPECT_DOUBLE_EQ(p.amplification(), 0.64);
}

TEST_F(PlanTest, JsonRoundTrip) {
  TrainingPlan plan = data_parallel_plan(profiles_, 4);
  plan.assignments[3].concurrent = true;
  const Json j = plan.to_json();
  const TrainingPlan back = TrainingPlan::from_json(j);
  EXPECT_EQ(back.model_name, plan.model_name);
  EXPECT_EQ(back.global_batch, plan.global_batch);
  EXPECT_EQ(back.max_gpus, plan.max_gpus);
  ASSERT_EQ(back.assignments.size(), plan.assignments.size());
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    EXPECT_EQ(back.assignments[i].layer, plan.assignments[i].layer);
    EXPECT_EQ(back.assignments[i].gpus, plan.assignments[i].gpus);
    EXPECT_EQ(back.assignments[i].concurrent, plan.assignments[i].concurrent);
    EXPECT_DOUBLE_EQ(back.assignments[i].comp_s, plan.assignments[i].comp_s);
  }
  EXPECT_DOUBLE_EQ(back.est_iteration_s, plan.est_iteration_s);
}

TEST_F(PlanTest, JsonSurvivesTextRoundTrip) {
  const TrainingPlan plan = data_parallel_plan(profiles_, 8);
  const std::string text = plan.to_json().dump(2);
  const TrainingPlan back = TrainingPlan::from_json(Json::parse(text));
  EXPECT_DOUBLE_EQ(back.est_iteration_s, plan.est_iteration_s);
  EXPECT_EQ(back.assignments.size(), plan.assignments.size());
}

TEST_F(PlanTest, AssignmentLookup) {
  const TrainingPlan plan = data_parallel_plan(profiles_, 8);
  EXPECT_EQ(plan.assignment(5).layer, 5);
  EXPECT_THROW(plan.assignment(999), std::out_of_range);
}

TEST_F(PlanTest, TableRendersAllLayers) {
  const TrainingPlan plan = data_parallel_plan(profiles_, 8);
  const std::string table = plan.to_table();
  for (const models::Layer& l : model_.layers()) {
    EXPECT_NE(table.find(l.name), std::string::npos) << l.name;
  }
}

}  // namespace
}  // namespace deeppool::core
