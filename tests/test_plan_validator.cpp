#include "core/plan_validator.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/zoo.h"
#include "net/network_model.h"

namespace deeppool::core {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest()
      : model_(models::zoo::vgg16()),
        cost_(models::DeviceSpec::a100()),
        net_(net::NetworkSpec::nvswitch()),
        profiles_(model_, cost_, net_, ProfileOptions{8, 32, true}),
        validator_(profiles_) {}

  models::ModelGraph model_;
  models::CostModel cost_;
  net::NetworkModel net_;
  ProfileSet profiles_;
  PlanValidator validator_;
};

TEST_F(ValidatorTest, PlannerOutputValidates) {
  const TrainingPlan plan = Planner(profiles_).plan({1.5});
  const ValidationReport report = validator_.validate(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidatorTest, DataParallelPlanValidates) {
  const ValidationReport report =
      validator_.validate(data_parallel_plan(profiles_, 8));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidatorTest, JsonRoundTripValidates) {
  const TrainingPlan plan = Planner(profiles_).plan({1.5});
  const TrainingPlan back = TrainingPlan::from_json(plan.to_json());
  EXPECT_TRUE(validator_.validate(back).ok());
}

TEST_F(ValidatorTest, WrongModelNameRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.model_name = "resnet50";
  const ValidationReport report = validator_.validate(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 1u);
}

TEST_F(ValidatorTest, WrongBatchRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.global_batch = 64;
  EXPECT_FALSE(validator_.validate(plan).ok());
}

TEST_F(ValidatorTest, MissingLayerRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments.pop_back();
  EXPECT_FALSE(validator_.validate(plan).ok());
}

TEST_F(ValidatorTest, DuplicateLayerRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments.back() = plan.assignments.front();
  EXPECT_FALSE(validator_.validate(plan).ok());
}

TEST_F(ValidatorTest, NonCandidateGpuCountRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments[3].gpus = 3;  // not a power of two
  const ValidationReport report = validator_.validate(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().layer, 3);
}

TEST_F(ValidatorTest, OversizedGpuCountRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments[3].gpus = 16;
  EXPECT_FALSE(validator_.validate(plan).ok());
}

TEST_F(ValidatorTest, NegativeTimingRejected) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments[5].comp_s = -1.0;
  EXPECT_FALSE(validator_.validate(plan).ok());
}

TEST_F(ValidatorTest, AmplificationBreachWarns) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.amp_limit = 1.0001;  // DP at per-GPU batch 4 amplifies well above 1
  const ValidationReport report = validator_.validate(plan);
  EXPECT_TRUE(report.ok());  // warnings only
  EXPECT_GT(report.warning_count(), 0u);
}

TEST_F(ValidatorTest, StaleEstimateWarns) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments[1].comp_s *= 3.0;  // pretend profiles drifted
  const ValidationReport report = validator_.validate(plan);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.warning_count(), 0u);
}

TEST_F(ValidatorTest, ReportRendersIssues) {
  TrainingPlan plan = data_parallel_plan(profiles_, 8);
  plan.assignments[3].gpus = 3;
  const std::string text = validator_.validate(plan).to_string();
  EXPECT_NE(text.find("REJECTED"), std::string::npos);
  EXPECT_NE(text.find("layer 3"), std::string::npos);
}

}  // namespace
}  // namespace deeppool::core
