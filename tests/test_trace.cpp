#include "util/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gpu/device.h"
#include "util/json.h"

namespace deeppool {
namespace {

TEST(TraceRecorder, EmptyTraceIsValidJson) {
  TraceRecorder t;
  const Json doc = Json::parse(t.to_json());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(TraceRecorder, EscapesNamesAndCategories) {
  TraceRecorder t;
  t.record(0, 0, "say \"hi\"\\\n", "cat\tty", 0.0, 1e-6);
  t.record(0, 0, std::string("ctl\x01") + "end", "kernel", 1e-6, 1e-6);
  const Json doc = Json::parse(t.to_json());  // throws if escaping is broken
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "say \"hi\"\\\n");
  EXPECT_EQ(events[0].at("cat").as_string(), "cat\tty");
  EXPECT_EQ(events[1].at("name").as_string(), std::string("ctl\x01") + "end");
}

TEST(TraceRecorder, InstantAndCounterEventsSerialize) {
  TraceRecorder t;
  t.instant(1, 2, "arrival j0", "sched/arrival", 0.5);
  t.counter(0, "event_queue_depth", 1.0, 3.0);
  const Json doc = Json::parse(t.to_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ph").as_string(), "i");
  EXPECT_EQ(events[0].at("s").as_string(), "g");
  EXPECT_EQ(events[0].at("pid").as_int(), 1);
  EXPECT_EQ(events[0].at("tid").as_int(), 2);
  EXPECT_DOUBLE_EQ(events[0].at("ts").as_number(), 5e5);
  EXPECT_EQ(events[1].at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(events[1].at("args").at("value").as_number(), 3.0);
}

TEST(TraceRecorder, ClearEmptiesTheBuffer) {
  TraceRecorder t;
  t.record(0, 0, "k", "kernel", 0.0, 1e-6);
  ASSERT_EQ(t.size(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(Json::parse(t.to_json()).at("traceEvents").as_array().empty());
}

TEST(TraceRecorder, ToJsonRoundTripsByteStably) {
  TraceRecorder t;
  t.record(0, 1, "j0 vgg16", "sched/job", 1e-3, 5e-4);
  t.instant(1, 0, "dispatch j0", "sched/dispatch", 1e-3);
  t.counter(0, "event_queue_depth", 1e-3, 2.0);
  const std::string once = t.to_json();
  // The streaming serializer emits exactly what a parse-and-redump produces,
  // so traces are byte-stable however they travel.
  EXPECT_EQ(Json::parse(once).dump(), once);
  EXPECT_EQ(once, t.to_json());
}

TEST(TraceRecorder, RecordsCompleteEvents) {
  TraceRecorder t;
  t.record(0, 1, "conv1.fwd", "kernel", 1e-3, 5e-4);
  t.record(2, 3, "allreduce", "comm", 2e-3, 1e-4);
  ASSERT_EQ(t.size(), 2u);
  const Json doc = Json::parse(t.to_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_EQ(events[0].at("name").as_string(), "conv1.fwd");
  EXPECT_EQ(events[0].at("pid").as_int(), 0);
  EXPECT_EQ(events[0].at("tid").as_int(), 1);
  EXPECT_DOUBLE_EQ(events[0].at("ts").as_number(), 1000.0);   // us
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_number(), 500.0);
  EXPECT_EQ(events[1].at("cat").as_string(), "comm");
}

TEST(TraceRecorder, SaveRoundTrips) {
  TraceRecorder t;
  t.record(0, 0, "k", "kernel", 0.0, 1e-6);
  const std::string path = "/tmp/deeppool_trace_test.json";
  t.save(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(Json::parse(content).at("traceEvents").as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceRecorder, SaveToBadPathThrows) {
  TraceRecorder t;
  EXPECT_THROW(t.save("/nonexistent_dir_zzz/trace.json"), std::runtime_error);
}

TEST(TraceRecorder, DeviceRecordsExecutedOps) {
  sim::Simulator sim;
  gpu::Device dev(sim, gpu::DeviceConfig{}, 7);
  TraceRecorder trace;
  dev.set_trace(&trace);
  const gpu::StreamId s = dev.create_stream(0);
  gpu::OpDesc op;
  op.type = gpu::OpType::kKernel;
  op.name = "k0";
  op.blocks = 4;
  op.block_s = 1e-5;
  dev.launch(s, op, [] {});
  sim.run();
  ASSERT_EQ(trace.size(), 1u);
  const Json doc = Json::parse(trace.to_json());
  const auto& ev = doc.at("traceEvents").as_array()[0];
  EXPECT_EQ(ev.at("pid").as_int(), 7);
  EXPECT_EQ(ev.at("name").as_string(), "k0");
  EXPECT_NEAR(ev.at("dur").as_number(), 10.0, 1e-6);  // 10us kernel
}

}  // namespace
}  // namespace deeppool
