#include "util/rng.h"

#include <gtest/gtest.h>

namespace deeppool {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32, UniformInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Pcg32, BoundedCoversRangeWithoutEscape) {
  Pcg32 rng(11);
  bool seen[7] = {};
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t x = rng.bounded(7);
    ASSERT_LT(x, 7u);
    seen[x] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Pcg32, UniformMeanApproximatelyHalf) {
  Pcg32 rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NormalMomentsApproximatelyCorrect) {
  Pcg32 rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

}  // namespace
}  // namespace deeppool
