#include "models/cost_model.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace deeppool::models {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModel cm{DeviceSpec::a100()};
};

TEST_F(CostModelTest, InputLayerIsFree) {
  const ModelGraph g = zoo::vgg16();
  const LayerTime t = cm.layer_time(g.layer(g.source()), 32);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST_F(CostModelTest, TimeMonotoneInBatch) {
  const ModelGraph g = zoo::vgg16();
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kInput) continue;
    double prev = 0.0;
    for (std::int64_t b : {1, 2, 4, 8, 16, 32, 64, 128}) {
      const double t = cm.layer_time(l, b).total();
      EXPECT_GE(t, prev) << l.name << " batch " << b;
      prev = t;
    }
  }
}

TEST_F(CostModelTest, LaunchFloorBoundsBelow) {
  const ModelGraph g = zoo::vgg16();
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kInput) continue;
    EXPECT_GE(cm.layer_time(l, 1).forward_s, cm.spec().kernel_launch_floor_s);
  }
}

TEST_F(CostModelTest, BatchRejectsNonPositive) {
  const ModelGraph g = zoo::vgg16();
  EXPECT_THROW(cm.layer_time(g.layer(1), 0), std::invalid_argument);
}

TEST_F(CostModelTest, UtilizationImprovesWithBatch) {
  const ModelGraph g = zoo::resnet50();
  // A large conv layer: utilization at batch 256 must far exceed batch 1.
  const Layer* big = nullptr;
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kConv2d &&
        (big == nullptr || l.flops_per_sample > big->flops_per_sample)) {
      big = &l;
    }
  }
  ASSERT_NE(big, nullptr);
  const double u1 = cm.layer_time(*big, 1).utilization;
  const double u256 = cm.layer_time(*big, 256).utilization;
  EXPECT_GT(u256, 2.0 * u1);
  EXPECT_LE(u256, 1.0 + 1e-9);
}

TEST_F(CostModelTest, ComputeBoundLayerNearRoofline) {
  // Big conv at large batch should approach (not exceed) peak FLOPs.
  GraphBuilder b("m", Shape{256, 56, 56});
  b.conv2d("c", 256, 3, 1, 1);
  const ModelGraph g = b.build();
  const double u = cm.layer_time(g.layer(1), 256).utilization;
  EXPECT_GT(u, 0.7);
  EXPECT_LE(u, 1.0 + 1e-9);
}

TEST_F(CostModelTest, DenseLayerIsMemoryBoundAtSmallBatch) {
  // VGG's fc6 moves ~200MB of weights; at batch 1 the time must be dominated
  // by the weight fetch, i.e. roughly weight_bytes / mem_bw.
  GraphBuilder b("m", Shape{25088, 1, 1});
  b.dense("fc6", 4096);
  const ModelGraph g = b.build();
  const Layer& fc = g.layer(1);
  const double weight_fetch =
      static_cast<double>(fc.params * cm.spec().dtype_bytes) /
      cm.spec().mem_bandwidth;
  const double t = cm.layer_time(fc, 1).forward_s;
  EXPECT_GT(t, weight_fetch);
  EXPECT_LT(t, 3.0 * weight_fetch);
}

TEST_F(CostModelTest, StrongScalingHeterogeneity) {
  // Fig. 5's premise: conv layers speed up strongly when the per-GPU batch
  // shrinks 128 -> 2; dense layers barely move.
  const ModelGraph g = zoo::vgg16();
  double conv_speedup = 0.0;
  double dense_speedup = 1e9;
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kConv2d) {
      conv_speedup = std::max(
          conv_speedup,
          cm.layer_time(l, 128).total() / cm.layer_time(l, 2).total());
    }
    if (l.kind == LayerKind::kDense) {
      dense_speedup = std::min(
          dense_speedup,
          cm.layer_time(l, 128).total() / cm.layer_time(l, 2).total());
    }
  }
  EXPECT_GT(conv_speedup, 20.0);
  EXPECT_LT(dense_speedup, 3.0);
}

TEST_F(CostModelTest, OccupancyRampMonotone) {
  // Below one tile of work the ramp is flat (a kernel can't use less than
  // one tile); beyond that it rises strictly toward 1.
  EXPECT_DOUBLE_EQ(cm.occupancy(10.0), cm.occupancy(100.0));
  double prev = 0.0;
  for (double w : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    const double o = cm.occupancy(w);
    EXPECT_GT(o, prev);
    EXPECT_LE(o, 1.0);
    prev = o;
  }
  EXPECT_GT(cm.occupancy(1e9), 0.99);
}

TEST_F(CostModelTest, IterationTimeIsSumOfLayers) {
  const ModelGraph g = zoo::tiny_mlp();
  double sum = 0.0;
  for (const Layer& l : g.layers()) sum += cm.layer_time(l, 8).total();
  EXPECT_DOUBLE_EQ(cm.iteration_compute_time(g, 8), sum);
}

TEST_F(CostModelTest, MemoryFootprintScalesWithBatch) {
  const ModelGraph g = zoo::vgg16();
  const std::int64_t m1 = cm.memory_footprint_bytes(g, 1);
  const std::int64_t m32 = cm.memory_footprint_bytes(g, 32);
  EXPECT_GT(m32, m1);
  // Param state must dominate the batch-1 footprint for VGG.
  EXPECT_GT(m1, g.total_params() * 16);
  // Strong-scaled VGG-16 (batch 4) plus a small background job fits in 40GB;
  // this is the memory headroom claim of §3.1.
  EXPECT_LT(cm.memory_footprint_bytes(g, 4) * 2, cm.spec().memory_bytes);
}

TEST_F(CostModelTest, InvalidSpecRejected) {
  DeviceSpec bad = DeviceSpec::a100();
  bad.peak_flops = 0;
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
}

TEST_F(CostModelTest, GradBytesMatchesParams) {
  const ModelGraph g = zoo::tiny_mlp();
  for (const Layer& l : g.layers()) {
    EXPECT_EQ(cm.grad_bytes(l), l.params * cm.spec().dtype_bytes);
  }
}

}  // namespace
}  // namespace deeppool::models
