#include "gpu/device.h"

#include <gtest/gtest.h>

#include <vector>

namespace deeppool::gpu {
namespace {

OpDesc kernel(const std::string& name, int blocks, double block_s) {
  OpDesc op;
  op.type = OpType::kKernel;
  op.name = name;
  op.blocks = blocks;
  op.block_s = block_s;
  return op;
}

OpDesc delay(const std::string& name, double dur) {
  OpDesc op;
  op.type = OpType::kDelay;
  op.name = name;
  op.base_duration_s = dur;
  return op;
}

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : dev_(sim_, DeviceConfig{}, 0) {}
  sim::Simulator sim_;
  Device dev_;
};

TEST_F(DeviceTest, SingleKernelRunsForOneWave) {
  const StreamId s = dev_.create_stream(0);
  double done = -1;
  dev_.launch(s, kernel("k", 108, 1e-3), [&] { done = sim_.now(); });
  sim_.run();
  // driver service + one wave (1ms).
  EXPECT_NEAR(done, 1e-3 + dev_.config().driver_entry_s, 1e-9);
  EXPECT_EQ(dev_.ops_completed(s), 1);
  EXPECT_NEAR(dev_.sm_seconds(s), 108 * 1e-3, 1e-9);
}

TEST_F(DeviceTest, OversubscribedKernelTakesMultipleWaves) {
  const StreamId s = dev_.create_stream(0);
  double done = -1;
  dev_.launch(s, kernel("k", 216, 1e-3), [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_NEAR(done, 2e-3 + dev_.config().driver_entry_s, 1e-9);
}

TEST_F(DeviceTest, StreamFifoOrdering) {
  const StreamId s = dev_.create_stream(0);
  std::vector<int> order;
  dev_.launch(s, kernel("a", 10, 1e-3), [&] { order.push_back(1); });
  dev_.launch(s, kernel("b", 10, 1e-4), [&] { order.push_back(2); });
  dev_.launch(s, delay("c", 1e-5), [&] { order.push_back(3); });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(DeviceTest, IndependentStreamsOverlap) {
  const StreamId a = dev_.create_stream(0);
  const StreamId b = dev_.create_stream(0);
  double done_a = -1, done_b = -1;
  dev_.launch(a, kernel("a", 50, 1e-3), [&] { done_a = sim_.now(); });
  dev_.launch(b, kernel("b", 50, 1e-3), [&] { done_b = sim_.now(); });
  sim_.run();
  // 100 blocks fit the 108 SMs: both finish in ~one wave, overlapping.
  EXPECT_LT(done_a, 1.2e-3);
  EXPECT_LT(done_b, 1.2e-3);
}

TEST_F(DeviceTest, HighPriorityStreamGetsSmsFirst) {
  const StreamId lo = dev_.create_stream(0);
  const StreamId hi = dev_.create_stream(10);
  double done_lo = -1, done_hi = -1;
  // The low-priority kernel needs two full waves; it wins the first wave
  // non-preemptively, but once SMs free up the high-priority kernel jumps
  // ahead of the second wave.
  dev_.launch(lo, kernel("lo", 216, 1e-3), [&] { done_lo = sim_.now(); });
  dev_.launch(hi, kernel("hi", 108, 1e-3), [&] { done_hi = sim_.now(); });
  sim_.run();
  EXPECT_LT(done_hi, done_lo);
  EXPECT_NEAR(done_hi, 2e-3, 1e-4);  // waited exactly one wave
  EXPECT_NEAR(done_lo, 3e-3, 1e-4);
}

TEST_F(DeviceTest, NonPreemptiveBlocksDelayHighPriority) {
  // The Fig. 12 pathology: a long low-priority kernel grabs all SMs first;
  // the later high-priority kernel must wait for it to drain.
  const StreamId lo = dev_.create_stream(0);
  const StreamId hi = dev_.create_stream(10);
  dev_.launch(lo, kernel("long", 108, 10e-3), [] {});
  sim_.run(1e-3);  // low-priority kernel now occupies the device
  double done_hi = -1;
  dev_.launch(hi, kernel("short", 8, 10e-6), [&] { done_hi = sim_.now(); });
  sim_.run();
  EXPECT_GT(done_hi, 10e-3);  // had to wait behind the running blocks
}

TEST_F(DeviceTest, TransmissionQueueHeadOfLineBlocking)
{
  // Many low-priority launches queued first delay a high-priority launch's
  // *delivery*, regardless of stream priorities (§5).
  const StreamId lo = dev_.create_stream(0);
  const StreamId hi = dev_.create_stream(10);
  for (int i = 0; i < 100; ++i) {
    dev_.launch(lo, kernel("spam", 1, 1e-7), [] {});
  }
  double done_hi = -1;
  dev_.launch(hi, kernel("urgent", 1, 1e-7), [&] { done_hi = sim_.now(); });
  EXPECT_GE(dev_.transmission_queue_depth(), 100u);
  sim_.run();
  // 101 queue entries' service times gate the delivery.
  EXPECT_GT(done_hi, 100 * dev_.config().driver_entry_s);
}

TEST_F(DeviceTest, GraphBatchOccupiesOneQueueEntry) {
  const StreamId s = dev_.create_stream(0);
  std::vector<Device::LaunchItem> items;
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    items.push_back({kernel("g" + std::to_string(i), 1, 1e-6),
                     [&] { ++completed; }});
  }
  dev_.launch_batch(s, std::move(items));
  EXPECT_EQ(dev_.transmission_queue_depth(), 1u);
  sim_.run();
  EXPECT_EQ(completed, 10);
  // One queue service + 10 sequential 1us kernels.
  EXPECT_NEAR(sim_.now(), dev_.config().driver_entry_s + 10e-6, 1e-9);
}

TEST_F(DeviceTest, PauseBlocksLowPriorityDispatch) {
  const StreamId lo = dev_.create_stream(0);
  const StreamId hi = dev_.create_stream(10);
  dev_.pause_priority_below(10);
  double done_lo = -1, done_hi = -1;
  dev_.launch(lo, kernel("lo", 4, 1e-4), [&] { done_lo = sim_.now(); });
  dev_.launch(hi, kernel("hi", 4, 1e-4), [&] { done_hi = sim_.now(); });
  sim_.run(5e-3);
  EXPECT_GT(done_hi, 0);   // high priority unaffected
  EXPECT_LT(done_lo, 0);   // low priority starved while paused
  dev_.resume_all();
  sim_.run();
  EXPECT_GT(done_lo, 0);
}

TEST_F(DeviceTest, CommOpHoldsSmsAndTracksInterference) {
  const StreamId bg = dev_.create_stream(0);
  const StreamId fg = dev_.create_stream(10);
  // Background kernel holds half the device.
  dev_.launch(bg, kernel("bg", 54, 50e-3), [] {});
  sim_.run(1e-3);
  OpDesc comm;
  comm.type = OpType::kComm;
  comm.name = "allreduce";
  comm.base_duration_s = 1e-3;
  comm.interference_sensitivity = 2.0;
  comm.comm_sms = 8;
  double done = -1;
  dev_.launch(fg, comm, [&] { done = sim_.now(); });
  sim_.run();
  // Slowdown factor 1 + 2.0 * (54/108) = 2.0 -> ~2ms.
  EXPECT_NEAR(done - 1e-3, dev_.config().driver_entry_s + 2e-3, 1e-4);
}

TEST_F(DeviceTest, CommOpUnaffectedWhenAlone) {
  const StreamId fg = dev_.create_stream(10);
  OpDesc comm;
  comm.type = OpType::kComm;
  comm.base_duration_s = 1e-3;
  comm.interference_sensitivity = 2.0;
  comm.comm_sms = 8;
  double done = -1;
  dev_.launch(fg, comm, [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_NEAR(done, 1e-3 + dev_.config().driver_entry_s, 1e-9);
}

TEST_F(DeviceTest, PrioritiesIgnoredWhenDisabled) {
  DeviceConfig cfg;
  cfg.honor_stream_priorities = false;
  Device dev(sim_, cfg, 1);
  const StreamId lo = dev.create_stream(0);
  const StreamId hi = dev.create_stream(10);
  double done_lo = -1, done_hi = -1;
  dev.launch(lo, kernel("lo", 108, 1e-3), [&] { done_lo = sim_.now(); });
  dev.launch(hi, kernel("hi", 108, 1e-3), [&] { done_hi = sim_.now(); });
  sim_.run();
  // Arrival order rules: the low-priority kernel keeps the SMs it got.
  EXPECT_LT(done_lo, done_hi);
}

TEST_F(DeviceTest, InvalidLaunchArguments) {
  const StreamId s = dev_.create_stream(0);
  EXPECT_THROW(dev_.launch(99, kernel("k", 1, 1e-6), [] {}),
               std::invalid_argument);
  EXPECT_THROW(dev_.launch(s, kernel("k", 0, 1e-6), [] {}),
               std::invalid_argument);
  EXPECT_THROW(dev_.launch_batch(s, {}), std::invalid_argument);
}

TEST_F(DeviceTest, BusySmAccounting) {
  const StreamId a = dev_.create_stream(0);
  const StreamId b = dev_.create_stream(0);
  dev_.launch(a, kernel("a", 30, 1e-3), [] {});
  dev_.launch(b, kernel("b", 40, 2e-3), [] {});
  sim_.run(1e-4);
  EXPECT_EQ(dev_.free_sms(), 108 - 70);
  EXPECT_EQ(dev_.busy_sms_excluding(a), 40);
  EXPECT_EQ(dev_.busy_sms_excluding(b), 30);
  sim_.run();
  EXPECT_EQ(dev_.free_sms(), 108);
  EXPECT_NEAR(dev_.total_sm_seconds(), 30 * 1e-3 + 40 * 2e-3, 1e-9);
}

}  // namespace
}  // namespace deeppool::gpu
