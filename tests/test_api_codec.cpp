// api::Request / api::Response JSON codecs: byte-stable round trips
// (mirroring the InterferenceTable cache contract) and structured errors
// for malformed requests — the wire format `deeppool serve` speaks.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/registry.h"
#include "api/request.h"
#include "api/response.h"
#include "api/version.h"

namespace deeppool::api {
namespace {

// Serialize -> parse -> serialize must be the identity on bytes, so a
// request log rewritten by any tool in the chain never churns.
void expect_byte_stable(const Request& request) {
  const std::string once = to_json(request).dump(2);
  const Request back = request_from_json(Json::parse(once));
  EXPECT_EQ(back.op(), request.op());
  EXPECT_EQ(to_json(back).dump(2), once) << "op " << request.op();
  EXPECT_EQ(Json::parse(once).dump(2), once);
}

TEST(ApiVersion, IsASingleNonEmptyConstant) {
  EXPECT_FALSE(version().empty());
  EXPECT_EQ(version(), std::string(kVersion));
}

TEST(Registry, EveryOpResolvesAndServeIsTransportOnly) {
  for (const char* op :
       {"plan", "simulate", "sweep", "schedule", "calibrate", "models"}) {
    const CommandInfo* info = find_command(op);
    ASSERT_NE(info, nullptr) << op;
    EXPECT_TRUE(info->is_op) << op;
  }
  const CommandInfo* serve = find_command("serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_FALSE(serve->is_op);
  EXPECT_TRUE(command_accepts(*serve, "--jobs"));
  EXPECT_TRUE(command_accepts(*serve, "--journal"));
  EXPECT_TRUE(command_accepts(*serve, "--slow-ms"));
  EXPECT_FALSE(command_accepts(*serve, "--policy"));
  const CommandInfo* profile = find_command("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_TRUE(profile->is_op);
  EXPECT_TRUE(command_accepts(*profile, "--no-times"));
  EXPECT_FALSE(command_accepts(*profile, "--journal"));
  EXPECT_EQ(find_command("frobnicate"), nullptr);
  EXPECT_EQ(op_names(),
            "plan | simulate | sweep | schedule | calibrate | models | "
            "stats | profile");
}

TEST(Registry, FlagOwnersRenderForErrorMessages) {
  // Single owner, two owners, many owners, no owner.
  EXPECT_EQ(flag_owners("--policy"), "`deeppool schedule`");
  EXPECT_EQ(flag_owners("--out"), "`deeppool calibrate`");
  EXPECT_EQ(flag_owners("--jobs"),
            "`deeppool sweep`, `schedule`, `calibrate` and `serve`");
  EXPECT_EQ(flag_owners("--frobnicate"), "");
}

TEST(RequestCodec, PlanSimulateSweepRoundTripByteStable) {
  runtime::ScenarioSpec spec;
  spec.name = "codec";
  spec.model = "vgg16";
  spec.seed = 9;
  spec.config.num_gpus = 4;
  expect_byte_stable(Request{PlanRequest{spec}});
  expect_byte_stable(Request{SimulateRequest{spec}});
  expect_byte_stable(Request{SweepRequest{spec, "amp_limit", {1.0, 1.5, 2.0}}});
}

TEST(RequestCodec, ScheduleCalibrateModelsRoundTripByteStable) {
  sched::ScheduleSpec schedule;
  schedule.name = "codec_sched";
  schedule.workload.num_jobs = 4;
  expect_byte_stable(Request{ScheduleRequest{schedule, ""}});
  expect_byte_stable(Request{ScheduleRequest{schedule, "/tmp/table.json"}});

  calib::CalibrationSpec calibration;
  calibration.name = "codec_calib";
  expect_byte_stable(Request{CalibrateRequest{calibration, 7}});
  expect_byte_stable(Request{ModelsRequest{}});
}

TEST(RequestCodec, StatsAndProfileRoundTripByteStable) {
  // Defaults serialize to the bare op (canonical spelling); non-default
  // flags appear and survive the round trip.
  expect_byte_stable(Request{StatsRequest{}});
  expect_byte_stable(Request{StatsRequest{true}});
  expect_byte_stable(Request{ProfileRequest{}});
  expect_byte_stable(Request{ProfileRequest{false, true}});
  EXPECT_EQ(to_json(Request{StatsRequest{}}).dump(), R"({"op":"stats"})");
  EXPECT_EQ(to_json(Request{ProfileRequest{}}).dump(),
            R"({"op":"profile"})");
  const Request reset = request_from_json(
      Json::parse(R"({"op": "stats", "reset": true})"));
  EXPECT_TRUE(std::get<StatsRequest>(reset.body).reset);
  const Request quiet = request_from_json(
      Json::parse(R"({"op": "profile", "times": false})"));
  EXPECT_FALSE(std::get<ProfileRequest>(quiet.body).include_times);
  EXPECT_FALSE(std::get<ProfileRequest>(quiet.body).reset);
}

TEST(RequestCodec, OpNamesMatchTheRegistry) {
  EXPECT_EQ(Request{PlanRequest{}}.op(), "plan");
  EXPECT_EQ(Request{SimulateRequest{}}.op(), "simulate");
  EXPECT_EQ(Request{SweepRequest{}}.op(), "sweep");
  EXPECT_EQ(Request{ScheduleRequest{}}.op(), "schedule");
  EXPECT_EQ(Request{CalibrateRequest{}}.op(), "calibrate");
  EXPECT_EQ(Request{ModelsRequest{}}.op(), "models");
  EXPECT_EQ(Request{StatsRequest{}}.op(), "stats");
  EXPECT_EQ(Request{ProfileRequest{}}.op(), "profile");
}

TEST(RequestCodec, BareSpecsDispatchOnTheirKind) {
  // A {"spec": {...}} line with no "op" routes on runtime::spec_kind, so
  // any spec file pipes into `deeppool serve` verbatim.
  EXPECT_EQ(request_from_json(
                Json::parse(R"({"spec": {"model": "vgg16"}})"))
                .op(),
            "simulate");
  EXPECT_EQ(request_from_json(Json::parse(
                R"({"spec": {"kind": "schedule", "workload": {}}})"))
                .op(),
            "schedule");
  EXPECT_EQ(request_from_json(
                Json::parse(R"({"spec": {"kind": "calibration"}})"))
                .op(),
            "calibrate");
  try {
    request_from_json(Json::parse(R"({"spec": {"kind": "mystery"}})"));
    FAIL() << "unknown kind inferred an op";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot infer an op"),
              std::string::npos)
        << e.what();
  }
}

TEST(RequestCodec, RejectsMalformedRequests) {
  EXPECT_THROW(request_from_json(Json::parse("[1, 2]")), std::runtime_error);
  // No op and nothing to infer one from.
  EXPECT_THROW(request_from_json(Json::parse(R"({"config": "x.json"})")),
               std::runtime_error);
  EXPECT_THROW(request_from_json(Json::parse(R"({"spec": [1]})")),
               std::runtime_error);
  // Unknown ops (and "serve", which is a transport, not an op) name the
  // valid set so the daemon's error is self-documenting.
  for (const char* op : {"frobnicate", "serve"}) {
    try {
      request_from_json(Json::parse(std::string(R"({"op": ")") + op +
                                    R"("})"));
      FAIL() << "op " << op << " parsed";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("valid ops: plan | simulate"),
                std::string::npos)
          << e.what();
    }
  }
  // Body errors surface from the inner spec codecs.
  EXPECT_THROW(request_from_json(Json::parse(R"({"op": "plan"})")),
               std::runtime_error);
  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"op": "sweep", "spec": {"model": "vgg16"}})")),
               std::runtime_error);
  EXPECT_THROW(
      request_from_json(Json::parse(
          R"({"op": "schedule", "spec": {"kind": "calibration"}})")),
      std::runtime_error);
}

TEST(RequestCodec, TimeoutMsRoundTripsAndDefaultsOmit) {
  // The default (no deadline) is omitted so canonical requests stay
  // byte-identical to pre-deadline logs.
  EXPECT_EQ(to_json(Request{ModelsRequest{}}).dump(), R"({"op":"models"})");
  Request request{ModelsRequest{}};
  request.timeout_ms = 250;
  expect_byte_stable(request);
  const Request back = request_from_json(
      Json::parse(R"({"op": "models", "timeout_ms": 250})"));
  EXPECT_DOUBLE_EQ(back.timeout_ms, 250.0);
  // A deadline rides any op, including spec-carrying ones.
  sched::ScheduleSpec schedule;
  schedule.workload.num_jobs = 2;
  Request with_spec{ScheduleRequest{schedule, ""}};
  with_spec.timeout_ms = 10.5;
  expect_byte_stable(with_spec);
}

TEST(RequestCodec, NonPositiveTimeoutMsIsOneLineError) {
  for (const char* line : {R"({"op": "models", "timeout_ms": 0})",
                           R"({"op": "models", "timeout_ms": -5})"}) {
    try {
      request_from_json(Json::parse(line));
      FAIL() << line;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("timeout_ms must be > 0"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ResponseCodec, OkEnvelopeRoundTripsByteStable) {
  Response response;
  response.ok = true;
  response.op = "models";
  response.payload["models"] = Json(Json::Array{Json("vgg16")});
  ServiceStats stats;
  stats.requests = 3;
  stats.plan_cache_hits = 12;
  stats.plan_cache_misses = 5;
  stats.plan_cache_size = 5;
  response.service = stats;

  const Json j = to_json(response);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_EQ(j.at("version").as_string(), version());
  EXPECT_EQ(j.at("service").at("plan_cache_hits").as_int(), 12);

  const std::string once = j.dump(2);
  const Response back = response_from_json(Json::parse(once));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.op, "models");
  ASSERT_TRUE(back.service.has_value());
  EXPECT_EQ(back.service->requests, 3);
  EXPECT_EQ(to_json(back).dump(2), once);
}

TEST(ResponseCodec, ErrorEnvelopeRoundTripsByteStable) {
  Response response;
  response.ok = false;
  response.error = "cannot open nope.json";

  const Json j = to_json(response);
  EXPECT_FALSE(j.at("ok").as_bool());
  EXPECT_FALSE(j.contains("payload"));
  EXPECT_FALSE(j.contains("op"));
  EXPECT_EQ(j.at("error").as_string(), "cannot open nope.json");
  EXPECT_EQ(j.at("version").as_string(), version());

  const std::string once = j.dump(2);
  const Response back = response_from_json(Json::parse(once));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "cannot open nope.json");
  EXPECT_EQ(to_json(back).dump(2), once);
}

TEST(ResponseCodec, DeadlinePartialRoundTripsByteStable) {
  Response response;
  response.ok = false;
  response.op = "schedule";
  response.error = "deadline exceeded";
  Json::Object partial;
  partial["jobs_completed"] = Json(41);
  partial["sim_time_s"] = Json(12.5);
  response.partial = Json(std::move(partial));

  const Json j = to_json(response);
  EXPECT_EQ(j.at("partial").at("jobs_completed").as_int(), 41);
  EXPECT_FALSE(j.contains("retry_after_ms"));

  const std::string once = j.dump(2);
  const Response back = response_from_json(Json::parse(once));
  ASSERT_TRUE(back.partial.has_value());
  EXPECT_DOUBLE_EQ(back.partial->at("sim_time_s").as_number(), 12.5);
  EXPECT_EQ(to_json(back).dump(2), once);
}

TEST(ResponseCodec, ShedRetryAfterRoundTripsByteStable) {
  Response response;
  response.ok = false;
  response.error = "shed: queue full (max_queue_depth=2); retry later";
  response.retry_after_ms = 120.0;

  const Json j = to_json(response);
  EXPECT_DOUBLE_EQ(j.at("retry_after_ms").as_number(), 120.0);

  const std::string once = j.dump(2);
  const Response back = response_from_json(Json::parse(once));
  ASSERT_TRUE(back.retry_after_ms.has_value());
  EXPECT_DOUBLE_EQ(*back.retry_after_ms, 120.0);
  EXPECT_EQ(to_json(back).dump(2), once);
}

TEST(ResponseCodec, FailureExtrasNeverLeakIntoOkEnvelopes) {
  // partial / retry_after_ms are failure-channel fields: an ok envelope
  // never emits them, keeping success bytes identical to earlier releases.
  Response response;
  response.ok = true;
  response.op = "models";
  response.payload["models"] = Json(Json::Array{});
  response.partial = Json(Json::Object{});
  response.retry_after_ms = 5.0;
  const Json j = to_json(response);
  EXPECT_FALSE(j.contains("partial"));
  EXPECT_FALSE(j.contains("retry_after_ms"));
}

}  // namespace
}  // namespace deeppool::api
